(* Does a parallel collection triggered inside a Pool worker hang? *)
let () =
  let pool = Beltway_sim.Pool.create ~jobs:2 in
  let results =
    Beltway_sim.Pool.map ~pool
      (fun seed ->
        let config = Result.get_ok (Beltway.Config.parse "ss") in
        let gc =
          Beltway.Gc.create ~frame_log_words:8 ~gc_domains:2 ~config
            ~heap_bytes:(768 * 1024) ()
        in
        let tr = Beltway_workload.Trace.random ~seed ~nroots:8 ~len:2000 in
        Beltway_workload.Trace.execute gc tr;
        Beltway.Gc.full_collect gc;
        seed)
      [ 1; 2 ]
  in
  Printf.printf "done: %d results\n%!" (List.length results)
